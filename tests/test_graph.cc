// Unit tests for the graph substrate: structure, BFS/APSP, components.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace jf::graph {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle_graph(int n) {
  Graph g = path_graph(n);
  g.add_edge(n - 1, 0);
  return g;
}

TEST(Graph, AddRemoveEdges) {
  Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0u);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1);
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(Graph, RejectsBadIds) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::invalid_argument);
  EXPECT_THROW(g.degree(-1), std::invalid_argument);
  EXPECT_THROW(g.remove_edge(0, 1), std::invalid_argument);
}

TEST(Graph, AddNodeGrows) {
  Graph g(1);
  NodeId v = g.add_node();
  EXPECT_EQ(v, 1);
  EXPECT_EQ(g.num_nodes(), 2);
  g.add_edge(0, v);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, EdgesCanonicalSorted) {
  Graph g(4);
  g.add_edge(3, 1);
  g.add_edge(2, 0);
  auto es = g.edges();
  ASSERT_EQ(es.size(), 2u);
  EXPECT_EQ(es[0], (Edge{0, 2}));
  EXPECT_EQ(es[1], (Edge{1, 3}));
}

TEST(Graph, DegreeSumInvariant) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_EQ(g.degree_sum(), 2 * g.num_edges());
}

TEST(Graph, RandomEdgeIsUniformish) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  Rng rng(3);
  std::map<std::pair<NodeId, NodeId>, int> seen;
  for (int i = 0; i < 3000; ++i) {
    auto e = g.random_edge(rng);
    EXPECT_TRUE(g.has_edge(e.a, e.b));
    EXPECT_LT(e.a, e.b);
    ++seen[{e.a, e.b}];
  }
  ASSERT_EQ(seen.size(), 3u);
  for (const auto& [k, count] : seen) EXPECT_GT(count, 700);  // ~1000 each
}

TEST(Graph, RandomEdgeAfterRemoval) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    auto e = g.random_edge(rng);
    EXPECT_EQ(e.a, 1);
    EXPECT_EQ(e.b, 2);
  }
}

TEST(Graph, MaxDegreeTracksMutation) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.max_degree(), 3);
  g.remove_edge(0, 1);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Bfs, DistancesOnPath) {
  auto g = path_graph(5);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bfs, UnreachableIsMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(ShortestPath, FindsPathAndHandlesTrivialCases) {
  auto g = cycle_graph(6);
  auto p = shortest_path(g, 0, 3);
  EXPECT_EQ(p.size(), 4u);  // 3 hops
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 3);
  EXPECT_EQ(shortest_path(g, 2, 2), (std::vector<NodeId>{2}));
  Graph disc(2);
  EXPECT_TRUE(shortest_path(disc, 0, 1).empty());
}

TEST(Connectivity, DetectsComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_connected(g));
  auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  EXPECT_TRUE(is_connected(g));
}

TEST(Connectivity, TrivialGraphs) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
}

TEST(PathStats, CycleGraph) {
  auto g = cycle_graph(6);
  auto s = path_length_stats(g);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 3);
  // Cycle of 6: per node distances {1,1,2,2,3} -> mean 1.8.
  EXPECT_NEAR(s.mean, 1.8, 1e-12);
  EXPECT_EQ(s.histogram.at(1), 12u);  // ordered pairs
  EXPECT_EQ(s.histogram.at(3), 6u);
}

TEST(PathStats, DisconnectedFlagged) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto s = path_length_stats(g);
  EXPECT_FALSE(s.connected);
  EXPECT_EQ(s.diameter, 1);
}

TEST(PathStats, CompleteGraphDiameterOne) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.add_edge(i, j);
  }
  EXPECT_EQ(diameter(g), 1);
  EXPECT_DOUBLE_EQ(mean_path_length(g), 1.0);
}

TEST(ReachableWithin, CountsHorizon) {
  auto g = path_graph(6);
  EXPECT_EQ(reachable_within(g, 0, 0), 0);
  EXPECT_EQ(reachable_within(g, 0, 2), 2);
  EXPECT_EQ(reachable_within(g, 0, 10), 5);
  EXPECT_EQ(reachable_within(g, 2, 1), 2);
}

TEST(Partition, BalancedPartitionSizesAndDeterminism) {
  Rng rng(7);
  Graph g = cycle_graph(22);
  for (int k : {1, 2, 3, 4, 8}) {
    Rng r1(11), r2(11);
    auto p1 = balanced_partition(g, k, r1);
    auto p2 = balanced_partition(g, k, r2);
    EXPECT_EQ(p1, p2) << "k=" << k;  // same rng stream -> same parts
    std::vector<int> sizes(static_cast<std::size_t>(k), 0);
    for (int part : p1) {
      ASSERT_GE(part, 0);
      ASSERT_LT(part, k);
      ++sizes[static_cast<std::size_t>(part)];
    }
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LE(*hi - *lo, 1) << "k=" << k;  // balanced to within one node
  }
}

TEST(Partition, BalancedPartitionClampsAndCutsSanely) {
  Rng rng(3);
  // k > n clamps to n: every node its own part.
  Graph tiny = path_graph(3);
  auto p = balanced_partition(tiny, 8, rng);
  std::set<int> parts(p.begin(), p.end());
  EXPECT_EQ(parts.size(), 3u);
  // On two disjoint cliques, a 2-way partition should find the zero cut.
  Graph g(8);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      g.add_edge(a, b);
      g.add_edge(4 + a, 4 + b);
    }
  }
  auto q = balanced_partition(g, 2, rng, /*restarts=*/5);
  std::size_t cut = 0;
  for (const Edge& e : g.edges()) {
    if (q[static_cast<std::size_t>(e.a)] != q[static_cast<std::size_t>(e.b)]) ++cut;
  }
  EXPECT_EQ(cut, 0u);
}

}  // namespace
}  // namespace jf::graph
