// detlint CLI — lints the tree for determinism-invariant violations.
//
//   detlint                              # lint <root>/src with the checked-in allowlist
//   detlint --root /path/to/repo src tools
//   detlint --disable wall-clock src
//   detlint --list-rules                 # rule catalogue with rationale
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. CI runs this as a
// blocking gate; see README "Correctness tooling".
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/fs.h"
#include "detlint.h"

namespace {

namespace fs = std::filesystem;

int usage(std::ostream& os, int code) {
  os << "usage: detlint [--root DIR] [--allowlist FILE] [--disable r1,r2]\n"
        "               [--list-rules] [--quiet] [paths...]\n"
        "\n"
        "Lints C++ sources (.h/.hpp/.cc/.cpp) for violations of the repo's\n"
        "determinism invariants. Paths are resolved against --root (default .);\n"
        "with no paths, lints <root>/src. The allowlist defaults to\n"
        "<root>/tools/detlint/allowlist.txt when present; inline suppressions\n"
        "use '// detlint: ok(<reason>)' on the flagged or preceding line.\n";
  return code;
}

void list_rules(std::ostream& os) {
  for (const auto& r : jf::detlint::rules()) {
    os << r.id << "\n  flags:     " << r.summary << "\n  rationale: " << r.rationale
       << "\n  fix:       " << r.hint << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::vector<std::string> disabled;
  std::vector<std::string> inputs;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "detlint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--allowlist") {
      allowlist_path = value();
    } else if (arg == "--disable") {
      std::string list = value();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        const std::string id = list.substr(pos, comma - pos);
        if (!id.empty()) {
          if (jf::detlint::find_rule(id) == nullptr) {
            std::cerr << "detlint: unknown rule '" << id << "'\n";
            return 2;
          }
          disabled.push_back(id);
        }
        pos = comma + 1;
      }
    } else if (arg == "--list-rules") {
      list_rules(std::cout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      inputs.push_back(arg);
    }
  }

  try {
    const fs::path root_path(root);
    jf::detlint::Options opts;
    opts.disabled = disabled;
    fs::path allow = allowlist_path.empty()
                         ? root_path / "tools" / "detlint" / "allowlist.txt"
                         : fs::path(allowlist_path);
    if (!allowlist_path.empty() || fs::exists(allow)) {
      opts.allowlist = jf::detlint::parse_allowlist(jf::common::read_file(allow)).allowlist;
    }
    if (inputs.empty()) inputs.push_back("src");
    std::vector<fs::path> paths;
    for (const auto& in : inputs) {
      const fs::path p = fs::path(in).is_absolute() ? fs::path(in) : root_path / in;
      if (!fs::exists(p)) {
        std::cerr << "detlint: no such path: " << p.string() << "\n";
        return 2;
      }
      paths.push_back(p);
    }
    const auto findings = jf::detlint::lint_paths(paths, root_path, opts);
    if (findings.empty()) {
      if (!quiet) std::cout << "detlint: clean\n";
      return 0;
    }
    std::cerr << jf::detlint::format_findings(findings);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "detlint: error: " << e.what() << "\n";
    return 2;
  }
}
