// detlint — the repo's determinism linter.
//
// Every reproducibility claim this repo makes (reports byte-identical at any
// --threads / --sim-shards, warm cache == cold cache) rests on a handful of
// coding invariants: canonical-order merges, sorted iteration before
// anything observable, one-stream RNG discipline, atomic file writes.
// detlint turns those invariants from review-time folklore into
// machine-checked rules over the source tree.
//
// The checker is deliberately lexical, not a compiler: it strips comments,
// blanks string/char literal *contents* (the quotes stay, so "is the first
// Span argument a literal?" remains answerable), and then pattern-matches
// per rule. That keeps it dependency-free and fast, at the cost of relying
// on the repo's idiom (one declaration per line, clang-format layout) —
// which CI enforces anyway. False positives are handled at the site with
//   // detlint: ok(<reason>)
// on the flagged line or the line directly above, or — for whole-file
// suppressions — with an entry in tools/detlint/allowlist.txt, so every
// suppression is diffable and review lands on the reason.
#pragma once

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace jf::detlint {

// One rule of the catalogue. `rationale` ties the rule to the determinism
// argument (shown by `detlint --list-rules` and quoted in the README).
struct RuleInfo {
  const char* id;         // stable kebab-case id, e.g. "unordered-iter"
  const char* summary;    // one-line description of what is flagged
  const char* rationale;  // why this breaks byte-identity
  const char* hint;       // how to fix (or when to annotate instead)
};

// The rule catalogue, in reporting order.
const std::vector<RuleInfo>& rules();

// Looks up a rule by id; nullptr when unknown.
const RuleInfo* find_rule(const std::string& id);

struct Finding {
  std::string file;  // path as displayed (relative to the lint root)
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

struct Options {
  // Rule ids switched off entirely (tests use this to prove each fixture
  // finding is attributable to exactly one rule).
  std::vector<std::string> disabled;
  // Whole-file suppressions: (rule id or "*", path suffix). A suffix matches
  // the display path exactly or at a '/' boundary.
  std::vector<std::pair<std::string, std::string>> allowlist;
};

// Parses the allowlist format: one `<rule-id|*> <path-suffix>` pair per
// line; '#' starts a comment; blank lines ignored. Throws std::runtime_error
// (with the line number) on malformed lines or unknown rule ids, so a typo
// in a suppression cannot silently disable nothing.
Options parse_allowlist(const std::string& text);

// Lints one translation unit given as text. `display_path` is used for
// reporting, allowlist matching, and the per-rule built-in path exemptions
// (e.g. wall-clock reads are legal inside src/obs/).
std::vector<Finding> lint_text(const std::string& display_path, const std::string& text,
                               const Options& opts);

// Lints files and directory trees (directories are scanned recursively for
// .h/.hpp/.cc/.cpp, visited in sorted relative-path order — the linter obeys
// its own unsorted-dir-iter rule). Display paths are made relative to
// `rel_base` when possible. Findings come back sorted by (file, line, rule).
std::vector<Finding> lint_paths(const std::vector<std::filesystem::path>& paths,
                                const std::filesystem::path& rel_base, const Options& opts);

// "file:line: [rule] message" lines plus a trailing summary/hint block;
// empty string when there are no findings.
std::string format_findings(const std::vector<Finding>& findings);

}  // namespace jf::detlint
