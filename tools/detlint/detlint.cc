#include "detlint.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/fs.h"

namespace jf::detlint {

namespace {

// --- the rule catalogue -----------------------------------------------------

const std::vector<RuleInfo> kRules = {
    {"unordered-iter",
     "iteration over a std::unordered_{map,set} (range-for or begin())",
     "unordered iteration order depends on hash seeding, libstdc++ version, and "
     "insertion history — any value that escapes such a loop into a Report, "
     "serializer, digest, or RNG fork breaks byte-identity across runs",
     "iterate a sorted key copy (or use std::map / a sorted vector) before "
     "anything observable; annotate '// detlint: ok(...)' only when the loop's "
     "effect is provably order-independent"},
    {"banned-entropy",
     "ambient entropy source (std::random_device, rand, srand, *rand48)",
     "results must be a pure function of the scenario seed; ambient entropy "
     "makes reports unreproducible by construction",
     "thread an explicit jf::Rng derived from the scenario seed (fork() for "
     "independent streams) instead"},
    {"wall-clock",
     "wall-clock read (system_clock, steady_clock, time(), gettimeofday, ...) "
     "outside obs/",
     "clock values leaking into a result-producing path make reports depend on "
     "when and how fast the run happened; only the observability layer (obs/) "
     "may read clocks, because its output never feeds a Report",
     "move timing into obs:: spans/metrics, or annotate '// detlint: ok(...)' "
     "when the value demonstrably reaches only stderr progress/stats output"},
    {"hw-concurrency",
     "hardware topology probe (hardware_concurrency, this_thread::get_id, "
     "native_handle)",
     "reports must be byte-identical at any --threads; machine shape may pick "
     "the *speed* (worker count) but must never pick the *numbers*",
     "route thread-count defaulting through parallel::resolve_threads (the one "
     "annotated user) and keep results schedule-independent"},
    {"raw-file-write",
     "direct file write (ofstream, fopen, fwrite) bypassing common/fs",
     "a torn write observed by a concurrent reader (serve mode, result store) "
     "is a nondeterministic failure; common::write_file_atomic's "
     "temp-file+rename is the only sanctioned write path",
     "use common::write_file_atomic (ifstream reads are fine)"},
    {"span-literal",
     "obs::Span constructed with a non-literal name",
     "the trace recorder stores the name *pointer* (zero-copy contract in "
     "obs/trace.h); a non-literal may dangle by export time and makes span "
     "identity allocation-dependent",
     "pass a string literal; encode variability in span args, not the name"},
    {"parallel-accum",
     "floating-point accumulation into a shared (non-indexed) lvalue inside a "
     "parallel_for / WorkerTeam::run body",
     "FP addition is not associative, so cross-iteration accumulation ordered "
     "by the scheduler yields run-to-run different bits (and a data race); "
     "every parallel region must write per-index slots and reduce serially in "
     "canonical order",
     "write results[i] per index and add a serial canonical apply step after "
     "the join (see flow/mcf.cc's sweep/apply split)"},
    {"unsorted-dir-iter",
     "std::filesystem directory iteration outside common/fs",
     "readdir order is filesystem-dependent; feeding it onward un-sorted makes "
     "job order or report content machine-dependent",
     "collect entries, std::sort them, then process (see jf_eval's "
     "queued_jobs); annotate '// detlint: ok(...)' when downstream state is "
     "provably order-independent"},
};

// --- lexical preprocessing --------------------------------------------------

// One scanned translation unit: per physical line, the code with comments
// removed and string/char literal contents blanked (quotes kept), plus the
// comment text (for '// detlint: ok(...)' detection).
struct FileText {
  std::string path;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

FileText preprocess(const std::string& path, const std::string& text) {
  FileText f;
  f.path = path;
  f.code.emplace_back();
  f.comment.emplace_back();
  enum class St { kNormal, kLine, kBlock, kString, kChar, kRaw };
  St st = St::kNormal;
  std::string raw_close;  // for raw strings: ")delim\""
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (st == St::kLine) st = St::kNormal;
      // Unterminated ordinary literals cannot span lines; reset defensively.
      if (st == St::kString || st == St::kChar) st = St::kNormal;
      f.code.emplace_back();
      f.comment.emplace_back();
      continue;
    }
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kNormal:
        if (c == '/' && next == '/') {
          st = St::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          // Raw string: R"delim( ... )delim"  — blank the whole payload.
          const bool raw = i > 0 && text[i - 1] == 'R' &&
                           (i < 2 || !(std::isalnum(static_cast<unsigned char>(text[i - 2])) ||
                                       text[i - 2] == '_'));
          f.code.back() += '"';
          if (raw) {
            std::string delim;
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') delim += text[j++];
            raw_close = ")" + delim + "\"";
            st = St::kRaw;
            i = j;  // skip past '('
          } else {
            st = St::kString;
          }
        } else if (c == '\'') {
          f.code.back() += '\'';
          st = St::kChar;
        } else {
          f.code.back() += c;
        }
        break;
      case St::kLine:
        f.comment.back() += c;
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kNormal;
          ++i;
        } else {
          f.comment.back() += c;
        }
        break;
      case St::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          f.code.back() += '"';
          st = St::kNormal;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          f.code.back() += '\'';
          st = St::kNormal;
        }
        break;
      case St::kRaw:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          f.code.back() += '"';
          i += raw_close.size() - 1;
          st = St::kNormal;
        }
        break;
    }
  }
  return f;
}

// --- small matchers ---------------------------------------------------------

bool word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Occurrences of `token` with word boundaries at both ends (token may itself
// contain '::').
std::vector<std::size_t> find_word(const std::string& line, const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !word_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !word_char(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

// First word occurrence that is directly followed (modulo spaces) by '('.
bool has_call(const std::string& line, const std::string& token) {
  for (std::size_t pos : find_word(line, token)) {
    std::size_t j = pos + token.size();
    while (j < line.size() && line[j] == ' ') ++j;
    if (j < line.size() && line[j] == '(') return true;
  }
  return false;
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return i;
}

// Trailing identifier of an expression like "runs[w.run].shared" -> "shared",
// "cache_" -> "cache_", "make_map()" -> "make_map".
std::string last_identifier(const std::string& expr) {
  std::string cur, last;
  for (char c : expr) {
    if (word_char(c)) {
      cur += c;
    } else {
      if (!cur.empty() && !std::isdigit(static_cast<unsigned char>(cur[0]))) last = cur;
      cur.clear();
    }
  }
  if (!cur.empty() && !std::isdigit(static_cast<unsigned char>(cur[0]))) last = cur;
  return last;
}

std::vector<std::string> identifiers(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (word_char(c)) {
      cur += c;
    } else if (!cur.empty()) {
      if (!std::isdigit(static_cast<unsigned char>(cur[0]))) out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty() && !std::isdigit(static_cast<unsigned char>(cur[0]))) out.push_back(cur);
  return out;
}

// Does `path` end with `suffix`, aligned to a '/' boundary?
bool path_ends_with(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  return path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/';
}

// Is some path component of `path` equal to `dir`?
bool in_dir(const std::string& path, const std::string& dir) {
  std::size_t pos = 0;
  while (pos < path.size()) {
    std::size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    if (path.compare(pos, slash - pos, dir) == 0) return true;
    pos = slash + 1;
  }
  return false;
}

// --- rule engines -----------------------------------------------------------

using Sink = std::vector<Finding>;

void add(Sink& out, const FileText& f, std::size_t line_idx, const char* rule,
         std::string message) {
  out.push_back({f.path, static_cast<int>(line_idx) + 1, rule, std::move(message)});
}

// Names declared (anywhere in the file) with an unordered container type.
// Joins the code into one buffer so declarations whose template argument list
// wraps across lines are still picked up.
std::set<std::string> unordered_names(const FileText& f) {
  std::string all;
  for (const auto& line : f.code) {
    all += line;
    all += '\n';
  }
  std::set<std::string> names;
  static const std::vector<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  for (const auto& cont : kContainers) {
    for (std::size_t pos : find_word(all, cont)) {
      std::size_t i = skip_spaces(all, pos + cont.size());
      if (i >= all.size() || all[i] != '<') continue;
      int depth = 0;
      while (i < all.size()) {
        if (all[i] == '<') ++depth;
        if (all[i] == '>' && all[i - 1] != '-') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
      if (depth != 0) continue;
      ++i;
      // Skip whitespace/newlines, refs, pointers between type and name.
      while (i < all.size() &&
             (all[i] == ' ' || all[i] == '\n' || all[i] == '&' || all[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < all.size() && word_char(all[i])) name += all[i++];
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

void rule_unordered_iter(const FileText& f, Sink& out) {
  const std::set<std::string> names = unordered_names(f);
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    // Range-for: for (decl : expr)
    for (std::size_t pos : find_word(line, "for")) {
      std::size_t i = skip_spaces(line, pos + 3);
      if (i >= line.size() || line[i] != '(') continue;
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = line.size();
      for (std::size_t j = i; j < line.size(); ++j) {
        if (line[j] == '(') ++depth;
        if (line[j] == ')') {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (line[j] == ':' && depth == 1 && colon == std::string::npos) {
          const bool dbl = (j > 0 && line[j - 1] == ':') || (j + 1 < line.size() && line[j + 1] == ':');
          if (!dbl) colon = j;
        }
      }
      if (colon == std::string::npos) continue;
      const std::string expr = line.substr(colon + 1, close - colon - 1);
      const std::string base = last_identifier(expr);
      if (expr.find("unordered_") != std::string::npos || names.count(base) != 0) {
        add(out, f, li, "unordered-iter",
            "range-for over unordered container '" + (base.empty() ? expr : base) +
                "' — iteration order is hash- and history-dependent");
      }
    }
    // Explicit iterator walks: name.begin() / name.cbegin() and friends.
    for (const auto& name : names) {
      for (std::size_t pos : find_word(line, name)) {
        std::size_t i = pos + name.size();
        if (i < line.size() && line[i] == '.') {
          ++i;
        } else if (i + 1 < line.size() && line[i] == '-' && line[i + 1] == '>') {
          i += 2;
        } else {
          continue;
        }
        for (const char* it : {"begin", "cbegin", "rbegin"}) {
          const std::string tok(it);
          if (line.compare(i, tok.size(), tok) == 0 && i + tok.size() < line.size() &&
              line[i + tok.size()] == '(') {
            add(out, f, li, "unordered-iter",
                "iterator walk over unordered container '" + name +
                    "' — iteration order is hash- and history-dependent");
          }
        }
      }
    }
  }
}

void rule_banned_entropy(const FileText& f, Sink& out) {
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    for (const char* tok : {"random_device", "srand", "drand48", "lrand48", "mrand48"}) {
      if (!find_word(line, tok).empty()) {
        add(out, f, li, "banned-entropy",
            std::string("ambient entropy source '") + tok + "'");
      }
    }
    if (has_call(line, "rand")) {
      add(out, f, li, "banned-entropy", "ambient entropy source 'rand()'");
    }
  }
}

void rule_wall_clock(const FileText& f, Sink& out) {
  // The observability layer is the sanctioned clock reader: its output never
  // feeds a Report (gated by the obs-on/off byte-identity tests).
  if (in_dir(f.path, "obs")) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    for (const char* tok : {"system_clock", "steady_clock", "high_resolution_clock",
                            "gettimeofday", "clock_gettime", "localtime", "gmtime"}) {
      if (!find_word(line, tok).empty()) {
        add(out, f, li, "wall-clock", std::string("wall-clock read '") + tok + "'");
      }
    }
    for (const char* tok : {"time", "clock"}) {
      if (has_call(line, tok)) {
        add(out, f, li, "wall-clock", std::string("wall-clock read '") + tok + "()'");
      }
    }
  }
}

void rule_hw_concurrency(const FileText& f, Sink& out) {
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    for (const char* tok : {"hardware_concurrency", "this_thread::get_id", "native_handle"}) {
      if (!find_word(line, tok).empty()) {
        add(out, f, li, "hw-concurrency",
            std::string("hardware topology probe '") + tok + "'");
      }
    }
  }
}

void rule_raw_file_write(const FileText& f, Sink& out) {
  // common/fs.cc *is* the sanctioned write path.
  if (path_ends_with(f.path, "common/fs.cc")) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    for (const char* tok : {"ofstream", "fopen", "freopen", "fwrite"}) {
      if (!find_word(line, tok).empty()) {
        add(out, f, li, "raw-file-write",
            std::string("direct file write via '") + tok +
                "' bypasses common::write_file_atomic");
      }
    }
  }
}

void rule_span_literal(const FileText& f, Sink& out) {
  // The Span class definition itself lives in obs/trace.{h,cc}.
  if (path_ends_with(f.path, "obs/trace.h") || path_ends_with(f.path, "obs/trace.cc")) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    for (std::size_t pos : find_word(line, "Span")) {
      std::size_t i = skip_spaces(line, pos + 4);
      // Optional variable name: `Span s(...)` vs temporary `Span(...)`.
      while (i < line.size() && word_char(line[i])) ++i;
      i = skip_spaces(line, i);
      if (i >= line.size() || line[i] != '(') continue;
      i = skip_spaces(line, i + 1);
      if (i >= line.size() || line[i] == ')') continue;  // not a construction
      if (line[i] == '"') continue;                      // literal name: ok
      if (line.compare(i, 5, "const") == 0) continue;    // copy-ctor declaration
      add(out, f, li, "span-literal",
          "obs::Span name is not a string literal — the recorder stores the "
          "pointer, not a copy");
    }
  }
}

// Line ranges covered by parallel_for(...) / team.run(...) call argument
// lists (which contain the lambda bodies).
std::vector<std::pair<std::size_t, std::size_t>> parallel_regions(const FileText& f) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    std::size_t call = std::string::npos;
    for (std::size_t pos : find_word(line, "parallel_for")) {
      const std::size_t j = skip_spaces(line, pos + 12);
      if (j < line.size() && line[j] == '(') call = j;
    }
    if (call == std::string::npos) {
      for (std::size_t pos : find_word(line, "run")) {
        // Only method calls: team.run( / team->run(.
        const bool member =
            (pos >= 1 && line[pos - 1] == '.') ||
            (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
        if (!member) continue;
        const std::size_t j = skip_spaces(line, pos + 3);
        if (j < line.size() && line[j] == '(') call = j;
      }
    }
    if (call == std::string::npos) continue;
    // The region is the call's parenthesized argument list, wherever it ends.
    int depth = 0;
    std::size_t end_line = li;
    bool done = false;
    for (std::size_t lj = li; lj < f.code.size() && !done; ++lj) {
      const std::string& l2 = f.code[lj];
      for (std::size_t k = lj == li ? call : 0; k < l2.size(); ++k) {
        if (l2[k] == '(') ++depth;
        if (l2[k] == ')') {
          --depth;
          if (depth == 0) {
            end_line = lj;
            done = true;
            break;
          }
        }
      }
    }
    regions.emplace_back(li, end_line);
  }
  return regions;
}

void rule_parallel_accum(const FileText& f, Sink& out) {
  // Names with floating-point evidence: declared on a line mentioning
  // double/float (covers `double total`, `std::vector<double> xs`, ...).
  // Keywords and vocabulary types are excluded — `std` appearing on a
  // double-bearing line must not taint every `std::` expression in the file.
  static const std::set<std::string> kNotNames = {
      "std",    "const",  "constexpr", "static", "double",      "float",
      "vector", "array",  "size_t",    "int",    "auto",        "return",
      "if",     "for",    "while",     "long",   "static_cast", "unsigned"};
  std::set<std::string> fp_names;
  for (const auto& line : f.code) {
    if (find_word(line, "double").empty() && find_word(line, "float").empty()) continue;
    for (const auto& id : identifiers(line)) {
      if (kNotNames.count(id) == 0) fp_names.insert(id);
    }
  }
  for (const auto& [lo, hi] : parallel_regions(f)) {
    for (std::size_t li = lo; li <= hi && li < f.code.size(); ++li) {
      const std::string& line = f.code[li];
      for (std::size_t i = 0; i + 1 < line.size(); ++i) {
        const char op = line[i];
        if ((op != '+' && op != '-' && op != '*' && op != '/') || line[i + 1] != '=') continue;
        if (i + 2 < line.size() && line[i + 2] == '=') continue;  // ==, <=, ... guards
        if (i > 0 && (line[i - 1] == op || line[i - 1] == '<' || line[i - 1] == '>')) continue;
        // Left-hand side: walk back over the assigned lvalue.
        std::size_t j = i;
        while (j > 0 && (line[j - 1] == ' ')) --j;
        if (j > 0 && line[j - 1] == ']') continue;  // per-index slot: results[i] += ...
        std::size_t end = j;
        while (j > 0 && (word_char(line[j - 1]) || line[j - 1] == '.' ||
                         (j > 1 && line[j - 2] == '-' && line[j - 1] == '>'))) {
          --j;
        }
        const std::string target = line.substr(j, end - j);
        if (target.empty() || !word_char(target[0])) continue;
        const std::string rhs = line.substr(i + 2, line.find(';', i) - i - 2);
        bool fp = false;
        for (const auto& id : identifiers(target)) fp |= fp_names.count(id) != 0;
        for (const auto& id : identifiers(rhs)) fp |= fp_names.count(id) != 0;
        // Literal like 0.5 in the rhs also marks the accumulation as FP.
        for (std::size_t k = 0; k + 2 < rhs.size() && !fp; ++k) {
          fp = std::isdigit(static_cast<unsigned char>(rhs[k])) && rhs[k + 1] == '.' &&
               std::isdigit(static_cast<unsigned char>(rhs[k + 2]));
        }
        if (!fp) continue;
        add(out, f, li, "parallel-accum",
            "floating-point accumulation into shared '" + target +
                "' inside a parallel region — reduction order follows the "
                "scheduler");
      }
    }
  }
}

void rule_unsorted_dir_iter(const FileText& f, Sink& out) {
  if (path_ends_with(f.path, "common/fs.cc")) return;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    for (const char* tok : {"directory_iterator", "recursive_directory_iterator"}) {
      if (!find_word(f.code[li], tok).empty()) {
        add(out, f, li, "unsorted-dir-iter",
            std::string("filesystem iteration via '") + tok +
                "' — readdir order is filesystem-dependent");
      }
    }
  }
}

// --- suppression ------------------------------------------------------------

bool has_ok_annotation(const std::string& comment) {
  const std::size_t pos = comment.find("detlint: ok(");
  if (pos == std::string::npos) return false;
  // An empty reason does not count: suppressions must say why.
  const std::size_t open = pos + 12;
  return open < comment.size() && comment[open] != ')';
}

bool suppressed(const FileText& f, const Finding& fi) {
  const std::size_t li = static_cast<std::size_t>(fi.line) - 1;
  if (li < f.comment.size() && has_ok_annotation(f.comment[li])) return true;
  return li > 0 && has_ok_annotation(f.comment[li - 1]);
}

bool allowlisted(const Options& opts, const Finding& fi) {
  for (const auto& [rule, suffix] : opts.allowlist) {
    if (rule != "*" && rule != fi.rule) continue;
    if (path_ends_with(fi.file, suffix)) return true;
  }
  return false;
}

}  // namespace

// --- public API -------------------------------------------------------------

const std::vector<RuleInfo>& rules() { return kRules; }

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& r : kRules) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

Options parse_allowlist(const std::string& text) {
  Options opts;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string rule, path, extra;
    if (!(fields >> rule)) continue;  // blank / comment-only line
    if (!(fields >> path) || (fields >> extra)) {
      throw std::runtime_error("allowlist line " + std::to_string(lineno) +
                               ": expected '<rule-id|*> <path-suffix>'");
    }
    if (rule != "*" && find_rule(rule) == nullptr) {
      throw std::runtime_error("allowlist line " + std::to_string(lineno) +
                               ": unknown rule '" + rule + "'");
    }
    opts.allowlist.emplace_back(rule, path);
  }
  return opts;
}

std::vector<Finding> lint_text(const std::string& display_path, const std::string& text,
                               const Options& opts) {
  const FileText f = preprocess(display_path, text);
  auto enabled = [&](const char* id) {
    return std::find(opts.disabled.begin(), opts.disabled.end(), id) == opts.disabled.end();
  };
  Sink raw;
  if (enabled("unordered-iter")) rule_unordered_iter(f, raw);
  if (enabled("banned-entropy")) rule_banned_entropy(f, raw);
  if (enabled("wall-clock")) rule_wall_clock(f, raw);
  if (enabled("hw-concurrency")) rule_hw_concurrency(f, raw);
  if (enabled("raw-file-write")) rule_raw_file_write(f, raw);
  if (enabled("span-literal")) rule_span_literal(f, raw);
  if (enabled("parallel-accum")) rule_parallel_accum(f, raw);
  if (enabled("unsorted-dir-iter")) rule_unsorted_dir_iter(f, raw);

  Sink out;
  for (auto& fi : raw) {
    if (suppressed(f, fi) || allowlisted(opts, fi)) continue;
    out.push_back(std::move(fi));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_paths(const std::vector<std::filesystem::path>& paths,
                                const std::filesystem::path& rel_base, const Options& opts) {
  namespace fs = std::filesystem;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
  };
  auto display = [&](const fs::path& p) {
    const fs::path rel = p.lexically_proximate(rel_base);
    return (rel.empty() || rel.native().rfind("..", 0) == 0 ? p : rel).generic_string();
  };
  std::vector<fs::path> files;
  for (const auto& p : paths) {
    if (fs::is_directory(p)) {
      // detlint: ok(entries are collected then sorted below — its own rule)
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && is_source(e.path())) files.push_back(e.path());
      }
    } else {
      files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end(),
            [&](const fs::path& a, const fs::path& b) { return display(a) < display(b); });
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> out;
  for (const auto& file : files) {
    const std::vector<Finding> fs_ = lint_text(display(file), common::read_file(file), opts);
    out.insert(out.end(), fs_.begin(), fs_.end());
  }
  return out;
}

std::string format_findings(const std::vector<Finding>& findings) {
  if (findings.empty()) return {};
  std::ostringstream os;
  std::set<std::string> seen_rules;
  for (const auto& fi : findings) {
    os << fi.file << ":" << fi.line << ": [" << fi.rule << "] " << fi.message << "\n";
    seen_rules.insert(fi.rule);
  }
  os << "\n";
  for (const auto& id : seen_rules) {
    const RuleInfo* r = find_rule(id);
    if (r != nullptr) os << id << ": hint: " << r->hint << "\n";
  }
  os << "detlint: " << findings.size() << " finding(s)\n";
  return os.str();
}

}  // namespace jf::detlint
