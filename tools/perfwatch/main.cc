// perfwatch CLI — perf-record regression gate and history timeline.
//
//   perfwatch compare <baseline.json> <candidate.json>
//             [--rel-pct P] [--noise-k K] [--wall-advisory]
//   perfwatch history <record.json...> [--format csv|json] [--out FILE]
//
// compare prints one verdict line per bench point and exits 1 when any
// blocking verdict fired: a work-counter drift or missing point always
// blocks; a wall-time regression blocks only between comparable environment
// fingerprints and without --wall-advisory (CI's shared runners pass
// --wall-advisory and gate on the deterministic work counters alone).
//
// history flattens records (in argument order — pass them oldest first)
// into one row per (record, point) for plotting the trajectory across PRs.
//
// Exit status: 0 clean, 1 blocking regression, 2 usage/IO error.
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/fs.h"
#include "perfwatch.h"

namespace {

namespace fs = std::filesystem;

int usage(std::ostream& os, int code) {
  os << "usage: perfwatch compare <baseline.json> <candidate.json>\n"
        "                 [--rel-pct P] [--noise-k K] [--wall-advisory]\n"
        "       perfwatch history <record.json...> [--format csv|json] [--out FILE]\n"
        "\n"
        "compare: per-point verdicts over two schema-v1 perf records.\n"
        "  Deterministic work counters must match exactly (any drift blocks);\n"
        "  wall time is gated at max(--rel-pct %, --noise-k x MAD noise floor)\n"
        "  when the environment fingerprints are comparable, advisory otherwise.\n"
        "  --rel-pct P        minimum relative wall regression to block (default 10)\n"
        "  --noise-k K        threshold multiplier over the noise floor (default 4)\n"
        "  --wall-advisory    report wall regressions without blocking\n"
        "history: one timeline row per (record, point), argument order preserved.\n"
        "  --format F         csv (default) or json\n"
        "  --out FILE         write atomically to FILE instead of stdout\n";
  return code;
}

int cmd_compare(const std::vector<std::string>& args) {
  jf::perfwatch::CompareOptions opts;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "perfwatch: " << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--rel-pct") {
      opts.rel_pct = std::stod(value());
    } else if (arg == "--noise-k") {
      opts.noise_k = std::stod(value());
    } else if (arg == "--wall-advisory") {
      opts.wall_advisory = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perfwatch: unknown compare option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "perfwatch: compare needs exactly <baseline> <candidate>\n";
    return usage(std::cerr, 2);
  }
  const auto baseline = jf::perfwatch::load_record(paths[0]);
  const auto candidate = jf::perfwatch::load_record(paths[1]);
  const auto report = jf::perfwatch::compare(baseline, candidate, opts);
  std::cout << jf::perfwatch::format_compare(report, opts);
  return report.blocking ? 1 : 0;
}

int cmd_history(const std::vector<std::string>& args) {
  std::string format = "csv";
  std::string out_path;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::cerr << "perfwatch: " << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--format") {
      format = value();
    } else if (arg == "--out") {
      out_path = value();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "perfwatch: unknown history option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "perfwatch: history needs at least one record\n";
    return usage(std::cerr, 2);
  }
  if (format != "csv" && format != "json") {
    std::cerr << "perfwatch: unknown --format '" << format << "' (csv or json)\n";
    return 2;
  }
  std::vector<jf::perfwatch::Record> records;
  for (const std::string& p : paths) records.push_back(jf::perfwatch::load_record(p));
  const auto rows = jf::perfwatch::history(records);
  const std::string rendered = format == "csv"
                                   ? jf::perfwatch::history_csv(rows)
                                   : jf::perfwatch::history_json(rows).dump(2) + "\n";
  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    jf::common::write_file_atomic(fs::path(out_path), rendered);
    std::cerr << "wrote " << rendered.size() << " bytes (" << format << ") to "
              << out_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "compare") return cmd_compare(args);
    if (cmd == "history") return cmd_history(args);
    if (cmd == "--help" || cmd == "-h" || cmd == "help") return usage(std::cout, 0);
    std::cerr << "perfwatch: unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::exception& e) {
    std::cerr << "perfwatch: error: " << e.what() << "\n";
    return 2;
  }
}
