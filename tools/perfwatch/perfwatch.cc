#include "perfwatch.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/fs.h"

namespace jf::perfwatch {

namespace {

// --- parsing ----------------------------------------------------------------

[[noreturn]] void fail(const std::string& source, const std::string& msg) {
  throw std::runtime_error((source.empty() ? std::string("perf record") : source) + ": " +
                           msg);
}

const json::Value& member(const json::Value& v, const char* key,
                          const std::string& source) {
  const json::Value* m = v.find(key);
  if (m == nullptr) fail(source, std::string("missing key '") + key + "'");
  return *m;
}

std::string opt_string(const json::Value& obj, const char* key) {
  const json::Value* m = obj.find(key);
  return m != nullptr && m->is_string() ? m->as_string() : std::string();
}

obs::EnvFingerprint parse_fingerprint(const json::Value& v, const std::string& source) {
  if (!v.is_object()) fail(source, "'fingerprint' is not an object");
  obs::EnvFingerprint fp;
  fp.compiler = opt_string(v, "compiler");
  fp.flags = opt_string(v, "flags");
  fp.build_type = opt_string(v, "build_type");
  fp.sanitizer = opt_string(v, "sanitizer");
  const json::Value* hw = v.find("hardware_concurrency");
  fp.hw_concurrency = hw != nullptr ? static_cast<int>(hw->as_int()) : 0;
  fp.cpu_model = opt_string(v, "cpu_model");
  fp.git_sha = opt_string(v, "git_sha");
  return fp;
}

Point parse_point(const json::Value& v, const std::string& source) {
  Point p;
  p.label = member(v, "label", source).as_string();
  const std::string ctx = source + " point '" + p.label + "'";
  if (const json::Value* params = v.find("params"); params != nullptr) {
    if (!params->is_object()) fail(ctx, "'params' is not an object");
    p.params = params->as_object();
  }
  for (const json::Value& s : member(v, "wall_seconds", ctx).as_array()) {
    p.wall_seconds.push_back(s.as_number());
  }
  p.wall = obs::derive_wall_stats(p.wall_seconds);
  const json::Value& work = member(v, "work", ctx);
  if (!work.is_object()) fail(ctx, "'work' is not an object");
  for (const auto& [name, value] : work.as_object()) {
    p.work.emplace_back(name, value.as_int());
  }
  std::sort(p.work.begin(), p.work.end());
  for (std::size_t i = 1; i < p.work.size(); ++i) {
    if (p.work[i].first == p.work[i - 1].first) {
      fail(ctx, "duplicate work counter '" + p.work[i].first + "'");
    }
  }
  return p;
}

// --- comparison helpers -----------------------------------------------------

std::string format_pct(double pct) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  if (pct >= 0) os << "+";
  os << pct << "%";
  return os.str();
}

std::string format_secs(double secs) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << secs << "s";
  return os.str();
}

// First differing work entry between two sorted counter lists; empty detail
// when they are identical.
std::string work_drift_detail(
    const std::vector<std::pair<std::string, std::int64_t>>& base,
    const std::vector<std::pair<std::string, std::int64_t>>& cand) {
  std::size_t i = 0, j = 0;
  while (i < base.size() || j < cand.size()) {
    if (j == cand.size() || (i < base.size() && base[i].first < cand[j].first)) {
      return "counter '" + base[i].first + "' missing from candidate (baseline " +
             std::to_string(base[i].second) + ")";
    }
    if (i == base.size() || cand[j].first < base[i].first) {
      return "counter '" + cand[j].first + "' new in candidate (" +
             std::to_string(cand[j].second) + ")";
    }
    if (base[i].second != cand[j].second) {
      return "counter '" + base[i].first + "': " + std::to_string(base[i].second) +
             " -> " + std::to_string(cand[j].second);
    }
    ++i;
    ++j;
  }
  return {};
}

}  // namespace

// --- public API -------------------------------------------------------------

Record parse_record(const json::Value& v, const std::string& source) {
  if (!v.is_object()) fail(source, "record is not a JSON object");
  Record r;
  r.source = source;
  r.schema_version = static_cast<int>(member(v, "schema_version", source).as_int());
  if (r.schema_version != obs::kPerfRecordSchemaVersion) {
    fail(source, "unsupported schema_version " + std::to_string(r.schema_version) +
                     " (expected " + std::to_string(obs::kPerfRecordSchemaVersion) + ")");
  }
  r.benchmark = member(v, "benchmark", source).as_string();
  r.fingerprint = parse_fingerprint(member(v, "fingerprint", source), source);
  if (const json::Value* meta = v.find("meta"); meta != nullptr && meta->is_object()) {
    r.meta = meta->as_object();
  }
  std::set<std::string> labels;
  for (const json::Value& pv : member(v, "points", source).as_array()) {
    Point p = parse_point(pv, source);
    if (!labels.insert(p.label).second) {
      fail(source, "duplicate point label '" + p.label + "'");
    }
    r.points.push_back(std::move(p));
  }
  return r;
}

Record load_record(const std::filesystem::path& path) {
  const std::string display = path.generic_string();
  try {
    return parse_record(json::Value::parse(common::read_file(path)), display);
  } catch (const json::ParseError& e) {
    throw std::runtime_error(display + ":" + std::to_string(e.line) + ":" +
                             std::to_string(e.column) + ": " + e.what());
  }
}

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kWorkRegression: return "work-regression";
    case Verdict::kWallRegression: return "wall-regression";
    case Verdict::kWithinNoise: return "within-noise";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kIncomparableFingerprint: return "incomparable-fingerprint";
    case Verdict::kMissingPoint: return "missing-point";
    case Verdict::kNewPoint: return "new-point";
  }
  return "unknown";
}

CompareReport compare(const Record& baseline, const Record& candidate,
                      const CompareOptions& opts) {
  if (baseline.benchmark != candidate.benchmark) {
    throw std::runtime_error("benchmark mismatch: baseline '" + baseline.benchmark +
                             "' vs candidate '" + candidate.benchmark + "'");
  }
  CompareReport report;
  report.benchmark = baseline.benchmark;
  report.fingerprints_comparable =
      obs::fingerprints_comparable(baseline.fingerprint, candidate.fingerprint);

  auto find_point = [](const Record& r, const std::string& label) -> const Point* {
    for (const Point& p : r.points) {
      if (p.label == label) return &p;
    }
    return nullptr;
  };

  for (const Point& base : baseline.points) {
    PointVerdict pv;
    pv.label = base.label;
    pv.baseline_median = base.wall.median_seconds;
    const Point* cand = find_point(candidate, base.label);
    if (cand == nullptr) {
      pv.verdict = Verdict::kMissingPoint;
      pv.detail = "point absent from candidate record";
      report.blocking = true;
      report.points.push_back(std::move(pv));
      continue;
    }
    pv.candidate_median = cand->wall.median_seconds;
    if (pv.baseline_median > 0) {
      pv.delta_pct =
          100.0 * (pv.candidate_median - pv.baseline_median) / pv.baseline_median;
    }

    // 1. Work counters: exact, machine-independent, blocking on any drift.
    const std::string drift = work_drift_detail(base.work, cand->work);
    if (!drift.empty()) {
      pv.verdict = Verdict::kWorkRegression;
      pv.detail = drift;
      report.blocking = true;
      report.points.push_back(std::move(pv));
      continue;
    }

    // 2. Wall time: gated only between comparable environments.
    if (!report.fingerprints_comparable) {
      pv.verdict = Verdict::kIncomparableFingerprint;
      pv.detail = "work exact-match; wall " + format_pct(pv.delta_pct) +
                  " advisory (environments differ)";
      report.points.push_back(std::move(pv));
      continue;
    }
    const double noise_floor = base.wall.mad_seconds + cand->wall.mad_seconds;
    const double threshold_seconds =
        std::max(opts.rel_pct / 100.0 * pv.baseline_median, opts.noise_k * noise_floor);
    pv.threshold_pct = pv.baseline_median > 0
                           ? 100.0 * threshold_seconds / pv.baseline_median
                           : 0.0;
    const double delta = pv.candidate_median - pv.baseline_median;
    if (delta > threshold_seconds) {
      pv.verdict = Verdict::kWallRegression;
      pv.detail = format_secs(pv.baseline_median) + " -> " +
                  format_secs(pv.candidate_median) + " (" + format_pct(pv.delta_pct) +
                  ", threshold " + format_pct(pv.threshold_pct) + ")";
      if (!opts.wall_advisory) report.blocking = true;
    } else if (delta < -threshold_seconds) {
      pv.verdict = Verdict::kImprovement;
      pv.detail = format_secs(pv.baseline_median) + " -> " +
                  format_secs(pv.candidate_median) + " (" + format_pct(pv.delta_pct) + ")";
    } else {
      pv.verdict = Verdict::kWithinNoise;
      pv.detail = format_pct(pv.delta_pct) + " within threshold " +
                  format_pct(pv.threshold_pct);
    }
    report.points.push_back(std::move(pv));
  }

  for (const Point& cand : candidate.points) {
    if (find_point(baseline, cand.label) != nullptr) continue;
    PointVerdict pv;
    pv.label = cand.label;
    pv.candidate_median = cand.wall.median_seconds;
    pv.verdict = Verdict::kNewPoint;
    pv.detail = "no baseline for this point";
    report.points.push_back(std::move(pv));
  }
  return report;
}

std::string format_compare(const CompareReport& report, const CompareOptions& opts) {
  std::ostringstream os;
  os << "perfwatch compare: benchmark '" << report.benchmark << "', fingerprints "
     << (report.fingerprints_comparable ? "comparable (wall gated)"
                                        : "NOT comparable (wall advisory)")
     << "\n";
  int blocking_points = 0;
  for (const PointVerdict& pv : report.points) {
    const bool blocks =
        pv.verdict == Verdict::kWorkRegression || pv.verdict == Verdict::kMissingPoint ||
        (pv.verdict == Verdict::kWallRegression && !opts.wall_advisory);
    blocking_points += blocks ? 1 : 0;
    os << "  [" << verdict_name(pv.verdict) << "] " << pv.label << ": " << pv.detail;
    if (pv.verdict == Verdict::kWallRegression && opts.wall_advisory) {
      os << " (advisory)";
    }
    os << "\n";
  }
  os << "perfwatch: " << report.points.size() << " point(s), " << blocking_points
     << " blocking -> " << (report.blocking ? "FAIL" : "ok") << "\n";
  return os.str();
}

std::vector<HistoryRow> history(const std::vector<Record>& records) {
  std::vector<HistoryRow> rows;
  for (const Record& r : records) {
    for (const Point& p : r.points) {
      HistoryRow row;
      row.source = r.source;
      row.benchmark = r.benchmark;
      row.git_sha = r.fingerprint.git_sha;
      row.label = p.label;
      row.wall = p.wall;
      row.work = p.work;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string history_csv(const std::vector<HistoryRow>& rows) {
  std::ostringstream os;
  os << "source,benchmark,git_sha,label,repeats,wall_min_s,wall_median_s,wall_mad_s,work\n";
  for (const HistoryRow& r : rows) {
    std::string work;
    for (const auto& [name, value] : r.work) {
      if (!work.empty()) work += ";";
      work += name + "=" + std::to_string(value);
    }
    os << r.source << "," << r.benchmark << "," << r.git_sha << "," << r.label << ","
       << r.wall.repeats << "," << json::number_to_string(r.wall.min_seconds) << ","
       << json::number_to_string(r.wall.median_seconds) << ","
       << json::number_to_string(r.wall.mad_seconds) << "," << work << "\n";
  }
  return os.str();
}

json::Value history_json(const std::vector<HistoryRow>& rows) {
  json::Array arr;
  for (const HistoryRow& r : rows) {
    json::Object o;
    o.emplace_back("source", r.source);
    o.emplace_back("benchmark", r.benchmark);
    o.emplace_back("git_sha", r.git_sha);
    o.emplace_back("label", r.label);
    o.emplace_back("repeats", r.wall.repeats);
    o.emplace_back("wall_min_seconds", r.wall.min_seconds);
    o.emplace_back("wall_median_seconds", r.wall.median_seconds);
    o.emplace_back("wall_mad_seconds", r.wall.mad_seconds);
    json::Object work;
    for (const auto& [name, value] : r.work) work.emplace_back(name, value);
    o.emplace_back("work", json::Value(std::move(work)));
    arr.emplace_back(json::Value(std::move(o)));
  }
  return json::Value(std::move(arr));
}

}  // namespace jf::perfwatch
