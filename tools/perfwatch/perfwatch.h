// perfwatch — the repo's performance regression gate over obs::perfrec
// records (schema v1; see src/obs/perfrec.h for what a record carries).
//
// Two operations:
//
//   compare(baseline, candidate) — per-point verdicts. The deterministic
//   `work` block must match exactly: those counters (GK phases/rounds, sim
//   rounds/events/hand-offs, store hits) are machine-independent by the
//   repo's byte-identity contract, so ANY drift is a real algorithmic
//   change and blocks regardless of where either record was captured. Wall
//   time is gated only when the environment fingerprints are comparable,
//   with threshold max(rel_pct% of baseline, noise_k x the records' summed
//   MAD noise floor); on incomparable fingerprints (different machine,
//   compiler, sanitizer, ...) the wall delta is reported as advisory.
//
//   history(records...) — a flat timeline (one row per record x point) for
//   plotting the perf trajectory across commits, as CSV or JSON.
//
// The library is deliberately detlint-clean: no clocks, no direct file
// writes (output goes to the caller / common::write_file_atomic).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"
#include "obs/perfrec.h"

namespace jf::perfwatch {

// One parsed bench point: derived wall stats are recomputed from the raw
// samples (the serialized `wall` block is for human readers; trusting it
// would let a stale derivation skew verdicts).
struct Point {
  std::string label;
  json::Object params;
  std::vector<double> wall_seconds;
  obs::WallStats wall;
  std::vector<std::pair<std::string, std::int64_t>> work;  // sorted by name
};

struct Record {
  int schema_version = 0;
  std::string benchmark;
  obs::EnvFingerprint fingerprint;
  json::Object meta;
  std::vector<Point> points;
  std::string source;  // display path ("" when parsed from memory)
};

// Parses one schema-v1 record; throws std::runtime_error with context on a
// malformed document, an unknown schema version, or duplicate point labels.
Record parse_record(const json::Value& v, const std::string& source = "");

// Reads + parses; errors name the path.
Record load_record(const std::filesystem::path& path);

// The per-point verdict matrix.
enum class Verdict {
  kWorkRegression,          // work counters drifted — blocking, always
  kWallRegression,          // comparable fingerprints, slower past threshold
  kWithinNoise,             // wall delta inside the threshold
  kImprovement,             // comparable fingerprints, faster past threshold
  kIncomparableFingerprint, // wall delta advisory: environments differ
  kMissingPoint,            // baseline point absent from candidate — blocking
  kNewPoint,                // candidate-only point — informational
};
std::string_view verdict_name(Verdict v);

struct PointVerdict {
  std::string label;
  Verdict verdict = Verdict::kWithinNoise;
  std::string detail;  // one-line human explanation
  double baseline_median = 0.0;
  double candidate_median = 0.0;
  double delta_pct = 0.0;      // (candidate - baseline) / baseline * 100
  double threshold_pct = 0.0;  // gate actually applied (0 when not gated)
};

struct CompareOptions {
  double rel_pct = 10.0;  // minimum relative wall regression worth blocking
  double noise_k = 4.0;   // threshold multiplier over the summed MADs
  // Downgrades wall regressions from blocking to advisory (CI's shared
  // runners gate on work counters only). Work drift always blocks.
  bool wall_advisory = false;
};

struct CompareReport {
  std::string benchmark;
  bool fingerprints_comparable = false;
  std::vector<PointVerdict> points;  // baseline order, then new points
  bool blocking = false;             // any blocking verdict under the options
};

// Compares two records of the same benchmark (throws std::runtime_error on
// a benchmark-name mismatch — that is operator error, not a regression).
CompareReport compare(const Record& baseline, const Record& candidate,
                      const CompareOptions& opts = {});

// Human-readable per-point verdict lines + summary, newline-terminated.
std::string format_compare(const CompareReport& report, const CompareOptions& opts);

// One timeline row per (record, point), in input order — input order is the
// caller's commit order.
struct HistoryRow {
  std::string source;
  std::string benchmark;
  std::string git_sha;
  std::string label;
  obs::WallStats wall;
  std::vector<std::pair<std::string, std::int64_t>> work;
};

std::vector<HistoryRow> history(const std::vector<Record>& records);

// CSV: one header + one line per row; work counters as "k=v;k=v" so the
// column set is stable across benchmarks.
std::string history_csv(const std::vector<HistoryRow>& rows);
json::Value history_json(const std::vector<HistoryRow>& rows);

}  // namespace jf::perfwatch
